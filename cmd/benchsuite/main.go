// Command benchsuite regenerates the routing evaluation of the paper:
// Fig. 10 (aggression levels), Fig. 11 (post-selection metric) and
// Fig. 12 (heavy-hex and square-lattice depth / gate / SWAP
// comparisons), plus the Table III inventory.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/dispatch"
	"repro/internal/distrib"
	"repro/internal/mirage"
	"repro/internal/mirrorbench"
	"repro/internal/polytope"
	"repro/internal/pool"
	"repro/internal/sabre"
	"repro/internal/topology"
	"repro/internal/transpile"
)

// runConfig carries the scheduler/engine knobs and the (optionally
// persistent) decomposition-cost cache through every experiment.
type runConfig struct {
	layout       sabre.LayoutOptions
	patience     int
	scoreWorkers int
	cache        *polytope.CostCache
	cacheLoaded  int  // entries merged from -cache-file at startup
	kernels      bool // run the numeric-kernel -benchmem lane
	// hitsBase/missesBase snapshot the cache counters at the start of
	// each -repeat pass, so every JSON document reports its own pass's
	// hit rate rather than the cumulative total — the number the CI
	// warm-start lane asserts strictly increases on a warmed hub.
	hitsBase, missesBase int64
	// mirrorVerify enables the semantic survival check on mirror-family
	// suite rows inside runFig12 (runMirror always verifies).
	mirrorVerify bool
	mirrorTol    float64
	// cluster, when non-nil, fans every routing-trial grid out to
	// remote miraged workers (-listen/-workers). Results are
	// bit-identical to local runs; only wall times and cache traffic
	// move.
	cluster *distrib.Cluster
}

func (rc *runConfig) options(router transpile.Router, depth bool, fixed *mirage.Aggression) transpile.Options {
	opts := transpile.Options{
		Router:              router,
		DepthSelection:      depth,
		FixedAggression:     fixed,
		Layout:              rc.layout,
		ConvergencePatience: rc.patience,
		ScoreWorkers:        rc.scoreWorkers,
		Cache:               rc.cache,
		SkipTrivialLayout:   true, // the suite circuits all need routing
	}
	if rc.cluster != nil {
		dopts, err := rc.cluster.Options(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return dopts
	}
	return opts
}

// fleetStats snapshots the hub's failure-event counters for the JSON
// document; nil on serial runs so the schema is unchanged for them.
func (rc *runConfig) fleetStats() *bench.FleetEventStats {
	if rc.cluster == nil {
		return nil
	}
	s := rc.cluster.Hub.Stats()
	return &bench.FleetEventStats{
		Releases:     s.Releases,
		Revocations:  s.Revocations,
		Disconnects:  s.Disconnects,
		Reconnects:   s.Reconnects,
		DecodeFaults: s.DecodeFaults,
		Rejected:     s.Rejected,
		Poisoned:     s.Poisoned,
		LocalItems:   s.LocalItems,
		Degraded:     s.Degraded,
		Recovered:    s.Recovered,

		WarmSends:        s.WarmSends,
		WarmSkips:        s.WarmSkips,
		WarmBytesSent:    s.WarmBytesSent,
		WarmBytesSkipped: s.WarmBytesSkipped,
	}
}

// beginPass snapshots the cache counters at the start of a suite pass.
func (rc *runConfig) beginPass() {
	rc.hitsBase, rc.missesBase = rc.cache.Stats()
}

// cacheStats builds the JSON cache statistics for the pass that just
// ran: hits/misses since beginPass (on a warm-tier distributed run
// the cache is the fleet master, so worker epilogue counters are
// included), plus the master's warm-tier telemetry when one exists.
func (rc *runConfig) cacheStats() *bench.RoutingCacheStats {
	hits, misses := rc.cache.Stats()
	hits -= rc.hitsBase
	misses -= rc.missesBase
	cs := &bench.RoutingCacheStats{
		LoadedEntries: rc.cacheLoaded,
		FinalEntries:  rc.cache.Len(),
		Hits:          hits,
		Misses:        misses,
	}
	if hits+misses > 0 {
		cs.HitRate = float64(hits) / float64(hits+misses)
	}
	if rc.cluster != nil && rc.cluster.Master != nil {
		ws := rc.cluster.Master.Stats()
		cs.SnapshotVersion = ws.SnapshotVersion
		cs.WarmEntries = ws.Entries
		cs.FoldedJobs = ws.FoldedJobs
		cs.FoldedEntries = ws.FoldedEntries
	}
	return cs
}

// iterPath derives the JSON path of suite pass it: pass 1 keeps the
// flag value, later passes insert ".runN" before the extension
// (BENCH_routing.json -> BENCH_routing.run2.json), so a -repeat run
// leaves one comparable document per pass.
func iterPath(path string, it int) string {
	if path == "" || it <= 1 {
		return path
	}
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s.run%d%s", strings.TrimSuffix(path, ext), it, ext)
}

func main() {
	var (
		fig       = flag.String("fig", "12", "experiment: 10 | 11 | 12 | table3 | mirror")
		topoName  = flag.String("topology", "square", "topology for fig 11/12/mirror: square | heavyhex | grid34 | line12")
		quick     = flag.Bool("quick", false, "reduced trial counts and circuit subset")
		trials    = flag.Int("trials", 0, "layout/routing trials (0 = paper defaults 20/20, quick = 4/4)")
		seed      = flag.Int64("seed", 1, "random seed")
		parallel  = flag.Int("parallel", 0, "routing-trial workers (0 = one per CPU, 1 = serial)")
		patience  = flag.Int("patience", 0, "stop scheduling trials after N consecutive non-improving trial indices (0 = fixed grid)")
		scoreWork = flag.Int("score-workers", 0, "workers for SWAP-candidate scoring inside each trial (0/1 = serial)")
		cacheFile = flag.String("cache-file", "", "persistent decomposition-cost cache: loaded at startup, saved at exit")
		coverFile = flag.String("coverage-file", "", "persistent coverage-set library: loaded at startup, saved at exit (skips the empirical polytope rebuilds)")
		jsonPath  = flag.String("json", "BENCH_routing.json", "machine-readable fig-12 results file (empty = disabled)")
		kernels   = flag.Bool("kernels", false, "run the numeric-kernel -benchmem lane and record it in the results file")
		patSweep  = flag.String("patience-sweep", "", "comma-separated ConvergencePatience values to sweep on the suite (e.g. \"0,2,5,8,12\"); runs the sweep instead of -fig")
		patJSON   = flag.String("patience-json", "BENCH_patience.json", "machine-readable patience-sweep results file (empty = disabled)")
		mirVerify = flag.Bool("mirror-verify", false, "fig 12: run the survival-bitstring semantic check on mirror-family rows and record pass/fail + fidelity in -json")
		mirTol    = flag.Float64("mirror-tol", 1e-9, "survival-fidelity infidelity tolerance for mirror verification")
		listen    = flag.String("listen", "", "coordinator address for distributed trials (e.g. 127.0.0.1:7117); workers join with `miraged worker -connect`")
		workers   = flag.Int("workers", 0, "remote workers to wait for before starting (requires -listen)")
		lease     = flag.Int("lease", 0, "routing trials per work-queue lease in distributed mode (0 = default)")
		hbTimeout = flag.Duration("hb-timeout", 0, "distributed: revoke a lease after this long without a heartbeat or results (0 = 30s default, negative = disable)")
		leaseTo   = flag.Duration("lease-timeout", 0, "distributed: revoke a lease after this long without item progress (0 = off)")
		jobDeadl  = flag.Duration("job-deadline", 0, "distributed: fail a job outright after this long, listing outstanding leases (0 = off)")
		rejoin    = flag.Duration("rejoin-grace", 0, "distributed: keep a job alive this long with zero workers connected (0 = off)")
		journal   = flag.String("journal", "", "distributed: write-ahead job journal directory; a restarted coordinator pointed at the same directory resumes unfinished jobs (requires -listen)")
		warm      = flag.Bool("warm", true, "distributed: keep a hub-resident master cost cache that folds worker epilogue deltas and re-seeds later jobs (also routes -cache-file to the fleet)")
		repeat    = flag.Int("repeat", 1, "run the selected experiment N times against the same process (and hub); pass N writes -json with a .runN suffix, so warm-start wins are measurable")
		fleetWait = flag.Duration("fleet-wait", 5*time.Minute, "distributed: how long to wait for -workers workers before starting; with -local-fallback a timeout proceeds degraded instead of failing")
		localFall = flag.Bool("local-fallback", true, "distributed: let the coordinator execute poison items and worker-starved job remainders itself (degraded mode)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (pprof format)")
		memProf   = flag.String("memprofile", "", "write a heap profile at exit to this file (pprof format)")
	)
	flag.Parse()

	// Profiles cover the run end to end so the routing lane in CI can
	// archive where suite time actually goes. Error paths exit without
	// flushing — the profile artifact is a success-path deliverable.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsuite:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchsuite:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchsuite:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so live objects dominate the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "benchsuite:", err)
			}
		}()
	}

	if err := (bench.SchedulerFlags{
		Parallel: *parallel, Patience: *patience, Trials: *trials,
		ScoreWorkers: *scoreWork, Workers: *workers, Lease: *lease,
	}).Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(2)
	}
	if (*listen == "") != (*workers == 0) {
		fmt.Fprintln(os.Stderr, "benchsuite: -listen and -workers must be set together")
		os.Exit(2)
	}
	if *journal != "" && *listen == "" {
		fmt.Fprintln(os.Stderr, "benchsuite: -journal only applies to distributed runs (set -listen); serial runs are rerun, not resumed")
		os.Exit(2)
	}
	if err := (bench.WarmFlags{
		Listen: *listen, Warm: *warm, CacheFile: *cacheFile, Repeat: *repeat,
	}).Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(2)
	}
	if *patSweep != "" && *repeat > 1 {
		fmt.Fprintln(os.Stderr, "benchsuite: -patience-sweep already iterates internally; -repeat > 1 is a contradiction")
		os.Exit(2)
	}

	lt, rt, fb := 20, 20, 4
	if *quick {
		lt, rt, fb = 4, 4, 2
	}
	if *trials > 0 {
		lt, rt = *trials, *trials
	}
	rc := &runConfig{
		layout: sabre.LayoutOptions{
			LayoutTrials: lt, RoutingTrials: rt, FwdBwdPasses: fb, Seed: *seed,
			Parallelism: *parallel,
		},
		patience:     *patience,
		scoreWorkers: *scoreWork,
		cache:        polytope.NewCostCache(0),
	}
	if *cacheFile != "" {
		n, err := rc.cache.LoadFile(*cacheFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loading %s: %v\n", *cacheFile, err)
			os.Exit(1)
		}
		rc.cacheLoaded = n
		fmt.Printf("cost cache: warm-started with %d entries from %s\n", n, *cacheFile)
	}
	var saveCoverage func() error
	if *coverFile != "" {
		var err error
		saveCoverage, err = polytope.WarmStartCoverageFile(*coverFile, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loading %s: %v\n", *coverFile, err)
			os.Exit(1)
		}
	}
	rc.kernels = *kernels
	rc.mirrorVerify = *mirVerify
	rc.mirrorTol = *mirTol

	if *listen != "" {
		hub := dispatch.NewHub()
		hub.HeartbeatTimeout = *hbTimeout
		hub.LeaseTimeout = *leaseTo
		hub.JobDeadline = *jobDeadl
		hub.RejoinGrace = *rejoin
		if *localFall {
			hub.LocalHandlers = distrib.Handlers()
		}
		if *journal != "" {
			jd, err := dispatch.OpenJournalDir(*journal)
			if err != nil {
				fmt.Fprintf(os.Stderr, "opening journal %s: %v\n", *journal, err)
				os.Exit(1)
			}
			if n := jd.Recovered(); n > 0 {
				fmt.Printf("journal: recovered %d job(s) from %s (%d torn frame(s) truncated); unfinished work will be resumed, not rerun\n",
					n, *journal, jd.TruncatedFrames())
			}
			hub.Journal = jd
		}
		addr, err := hub.Listen(*listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "listening on %s: %v\n", *listen, err)
			os.Exit(1)
		}
		defer hub.Close()
		fmt.Printf("coordinator listening on %s; waiting for %d workers...\n", addr, *workers)
		if err := hub.WaitWorkers(*workers, *fleetWait); err != nil {
			if hub.LocalHandlers == nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "benchsuite: %v; proceeding with %d workers — the remainder will run DEGRADED on the coordinator\n",
				err, hub.Workers())
		}
		fmt.Printf("%d workers connected; trials will be dispatched remotely\n", hub.Workers())
		if *warm {
			// The suite's cache IS the fleet master: entries loaded from
			// -cache-file ship to workers in the warm snapshot (the old
			// behaviour — coordinator-side only — is what WarmFlags
			// rejects), and every job's epilogue folds back in here.
			rc.cluster = distrib.NewClusterWithCache(hub, rc.cache)
			rc.cluster.Master.Logf = func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			}
		} else {
			// Cold: no master, no hub WarmSource — workers start every
			// job with an empty cache, the pre-warm-tier behaviour.
			rc.cluster = &distrib.Cluster{Hub: hub}
		}
		rc.cluster.TrialLease = *lease
	}

	if *patSweep != "" {
		runPatienceSweep(rc, pickTopo(*topoName), *quick, *patSweep, *patJSON)
		saveCaches(rc, *cacheFile, saveCoverage, *coverFile)
		return
	}

	for it := 1; it <= *repeat; it++ {
		if *repeat > 1 {
			fmt.Printf("\n=== suite pass %d of %d ===\n", it, *repeat)
		}
		rc.beginPass()
		switch *fig {
		case "table3":
			runTable3()
		case "10":
			runFig10(rc)
		case "11":
			runFig11(rc, pickTopo(*topoName), *quick)
		case "12":
			runFig12(rc, pickTopo(*topoName), *quick, iterPath(*jsonPath, it))
		case "mirror":
			runMirror(rc, pickTopo(*topoName), *quick, iterPath(*jsonPath, it))
		default:
			fmt.Fprintf(os.Stderr, "unknown -fig %q\n", *fig)
			os.Exit(1)
		}
	}

	if rc.cluster != nil && rc.cluster.Master != nil {
		ws := rc.cluster.Master.Stats()
		fs := rc.cluster.Hub.Stats()
		fmt.Printf("warm tier: snapshot v%d with %d entries; folded %d job epilogue(s) / %d new entries; snapshots sent %d (%d B), skipped %d (%d B saved)\n",
			ws.SnapshotVersion, ws.Entries, ws.FoldedJobs, ws.FoldedEntries,
			fs.WarmSends, fs.WarmBytesSent, fs.WarmSkips, fs.WarmBytesSkipped)
	}
	saveCaches(rc, *cacheFile, saveCoverage, *coverFile)
}

func saveCaches(rc *runConfig, cacheFile string, saveCoverage func() error, coverFile string) {
	if cacheFile != "" {
		if err := rc.cache.SaveFile(cacheFile); err != nil {
			fmt.Fprintf(os.Stderr, "saving %s: %v\n", cacheFile, err)
			os.Exit(1)
		}
		fmt.Printf("cost cache: saved %d entries to %s (hit rate %.1f%%)\n",
			rc.cache.Len(), cacheFile, 100*rc.cache.HitRate())
	}
	if saveCoverage != nil {
		if err := saveCoverage(); err != nil {
			fmt.Fprintf(os.Stderr, "saving %s: %v\n", coverFile, err)
			os.Exit(1)
		}
		fmt.Printf("coverage sets: saved library to %s\n", coverFile)
	}
}

// runPatienceSweep measures the quality/throughput trade of the
// adaptive trial scheduler: for each ConvergencePatience value it runs
// the MIRAGE-Depth pipeline over the suite and aggregates summed depth
// against executed trials, relative to the patience=0 full grid. Both
// depth and trial counts are seed-deterministic (the stop rule is
// defined on trial indices), so rows are comparable across machines.
func runPatienceSweep(rc *runConfig, topo *topology.Topology, quick bool, spec, jsonPath string) {
	var values []int
	for _, f := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 0 {
			fmt.Fprintf(os.Stderr, "bad -patience-sweep value %q\n", f)
			os.Exit(1)
		}
		values = append(values, v)
	}
	entries := suite(quick)
	fmt.Printf("ConvergencePatience sweep on %s (%dx%d trials, %d circuits)\n",
		topo.Name, rc.layout.LayoutTrials, rc.layout.RoutingTrials, len(entries))
	fmt.Printf("%-9s | %12s %9s | %9s %9s %7s | %9s\n",
		"patience", "depth-sum", "vs-full", "executed", "budgeted", "saved", "wall")

	file := &bench.PatienceSweepFile{
		Topology:      topo.Name,
		Seed:          rc.layout.Seed,
		LayoutTrials:  rc.layout.LayoutTrials,
		RoutingTrials: rc.layout.RoutingTrials,
	}
	for _, e := range entries {
		file.Circuits = append(file.Circuits, e.Name)
	}
	// One prepared analysis per circuit, reused by every patience value:
	// the sweep varies only the stop rule, never the circuit.
	prepped := make([]*transpile.PreparedCircuit, len(entries))
	for i, e := range entries {
		prepped[i] = prepareOne(e.Build(), topo)
	}
	var fullDepth float64
	for vi, p := range values {
		rcp := *rc
		rcp.patience = p
		var row bench.PatienceSweepRow
		row.Patience = p
		start := time.Now()
		for _, pc := range prepped {
			rep := transpileOne(pc, transpile.MIRAGE, true, nil, &rcp)
			row.DepthPulsesSum += rep.DepthPulses
			row.TrialsExecuted += rep.TrialsExecuted
			row.TrialsBudgeted += rep.TrialsBudgeted
		}
		row.WallMS = float64(time.Since(start).Microseconds()) / 1000
		if vi == 0 && p != 0 {
			fmt.Fprintln(os.Stderr, "note: first sweep value is not 0; depth_regress_pct is relative to it")
		}
		if vi == 0 {
			fullDepth = row.DepthPulsesSum
		}
		if fullDepth > 0 {
			row.DepthRegressPct = 100 * (row.DepthPulsesSum - fullDepth) / fullDepth
		}
		if row.TrialsBudgeted > 0 {
			row.TrialsSavedPct = 100 * float64(row.TrialsBudgeted-row.TrialsExecuted) / float64(row.TrialsBudgeted)
		}
		file.Rows = append(file.Rows, row)
		fmt.Printf("%-9d | %12.1f %+8.2f%% | %9d %9d %6.1f%% | %7.0fms\n",
			p, row.DepthPulsesSum, row.DepthRegressPct,
			row.TrialsExecuted, row.TrialsBudgeted, row.TrialsSavedPct, row.WallMS)
	}
	if jsonPath != "" {
		if err := file.WriteFile(jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", jsonPath, len(file.Rows))
	}
}

func pickTopo(name string) *topology.Topology {
	switch name {
	case "square":
		return topology.SquareLattice66()
	case "heavyhex":
		return topology.HeavyHex57()
	// The small devices below exist for the mirror semantic gate: the
	// routed footprint must stay within circuit.MaxUnitaryQubits for
	// dense-unitary verification, so CI gates on compact topologies.
	case "grid34":
		return topology.Grid(3, 4)
	case "line12":
		return topology.Line(12)
	}
	// Same rationale as SchedulerFlags.Validate: a typo must not
	// silently benchmark the wrong machine.
	fmt.Fprintf(os.Stderr, "benchsuite: unknown -topology %q (want square, heavyhex, grid34 or line12)\n", name)
	os.Exit(2)
	return nil
}

func suite(quick bool) []bench.Entry {
	if quick {
		return bench.QuickSuite()
	}
	return bench.Suite()
}

func runTable3() {
	fmt.Println("Table III — selected circuit benchmarks")
	fmt.Printf("%-22s %8s %10s %-16s\n", "Name", "Qubits", "2Q Gates", "Class")
	for _, e := range bench.Suite() {
		c := e.Build()
		fmt.Printf("%-22s %8d %10d %-16s\n", e.Name, c.NumQubits, c.Count2Q(), e.Class)
	}
}

// transpileOne runs one router configuration over a shared
// PreparedCircuit. Callers prepare each circuit once (see prepareOne)
// and reuse the analysis across every router/aggression/patience row,
// so the per-circuit cleaning, consolidation and DAG construction is
// paid once per circuit rather than once per row.
func transpileOne(pc *transpile.PreparedCircuit, router transpile.Router,
	depth bool, fixed *mirage.Aggression, rc *runConfig) *transpile.Report {
	rep, err := transpile.TranspilePrepared(pc, rc.options(router, depth, fixed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return rep
}

func prepareOne(c *circuit.Circuit, topo *topology.Topology) *transpile.PreparedCircuit {
	return transpile.PrepareCircuit(c, topo)
}

func runFig10(rc *runConfig) {
	fmt.Println("Fig. 10 — aggression level study (average pulse depth; lower is better)")
	names := []string{"wstate_n27", "bigadder_n18", "qft_n18", "bv_n30"}
	topo := topology.SquareLattice66()
	fmt.Printf("%-16s %10s %10s %10s %10s %10s\n", "circuit", "qiskit", "a0", "a1", "a2", "a3")
	for _, name := range names {
		e, err := bench.ByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pc := prepareOne(e.Build(), topo)
		base := transpileOne(pc, transpile.SABRE, false, nil, rc)
		row := fmt.Sprintf("%-16s %10.1f", name, base.DepthPulses)
		for lvl := 0; lvl <= 3; lvl++ {
			a := mirage.Aggression(lvl)
			rep := transpileOne(pc, transpile.MIRAGE, true, &a, rc)
			row += fmt.Sprintf(" %10.1f", rep.DepthPulses)
		}
		fmt.Println(row)
	}
	fmt.Println("\nAs in the paper, no single aggression level wins everywhere —")
	fmt.Println("which motivates the mixed 5/45/45/5 trial distribution.")
}

func runFig11(rc *runConfig, topo *topology.Topology, quick bool) {
	fmt.Printf("Fig. 11 — post-selection metric study on %s\n", topo.Name)
	fmt.Printf("%-22s %10s %14s %14s\n", "circuit", "qiskit", "mirage-swaps", "mirage-depth")
	var dq, ds, dd float64
	for _, e := range suite(quick) {
		pc := prepareOne(e.Build(), topo)
		q := transpileOne(pc, transpile.SABRE, false, nil, rc)
		s := transpileOne(pc, transpile.MIRAGE, false, nil, rc)
		d := transpileOne(pc, transpile.MIRAGE, true, nil, rc)
		fmt.Printf("%-22s %10.1f %14.1f %14.1f\n", e.Name, q.DepthPulses, s.DepthPulses, d.DepthPulses)
		dq += q.DepthPulses
		ds += s.DepthPulses
		dd += d.DepthPulses
	}
	fmt.Printf("\naverage depth reduction vs qiskit: mirage-swaps %.1f%%, mirage-depth %.1f%%\n",
		100*(dq-ds)/dq, 100*(dq-dd)/dq)
	fmt.Println("(paper: 24.1% and 29.5% on the full suite with 20/20/4 trials)")
}

func runFig12(rc *runConfig, topo *topology.Topology, quick bool, jsonPath string) {
	fmt.Printf("Fig. 12 — MIRAGE vs Qiskit-SABRE on %s (%d workers, patience %d)\n",
		topo.Name, pool.Size(rc.layout.Parallelism), rc.patience)
	fmt.Printf("%-22s | %9s %9s | %9s %9s | %6s %6s | %8s | %11s\n",
		"circuit", "q-depth", "m-depth", "q-gates", "m-gates", "q-swp", "m-swp", "mirror%", "trials")
	var (
		sumDepthQ, sumDepthM   float64
		sumGatesQ, sumGatesM   float64
		sumSwapsQ, sumSwapsM   float64
		wDepth, wGates, wSwaps float64
		count                  int
	)
	start := time.Now()
	var rows []bench.RoutingRow
	verifyFailures := 0
	addRow := func(e bench.Entry, rep *transpile.Report) {
		row := bench.RoutingRow{
			Seq:     len(rows),
			Circuit: e.Name, Router: rep.Router,
			WallMS:      float64(rep.Runtime.Microseconds()) / 1000,
			DepthPulses: rep.DepthPulses, TotalGates: rep.TotalBasisGates,
			Swaps: rep.SwapsInserted, Mirrors: rep.MirrorsUsed,
			TrialsExecuted: rep.TrialsExecuted, TrialsBudgeted: rep.TrialsBudgeted,
		}
		if rc.mirrorVerify && e.Mirror != nil {
			gen := mirrorbench.Generate(*e.Mirror)
			fid, err := mirrorbench.Verify(rep.Routed, rep.FinalLayout, gen.Expected, rc.mirrorTol)
			switch {
			case errors.Is(err, mirrorbench.ErrTooWide):
				// Advisory skip on big devices: the routed footprint
				// outgrew the dense-unitary limit, so the check cannot
				// run here. The -fig mirror gate (small topologies)
				// treats the same condition as a failure.
				fmt.Fprintf(os.Stderr, "mirror-verify: skipping %s/%s: %v\n", e.Name, rep.Router, err)
			case err != nil:
				verifyFailures++
				ok := false
				row.MirrorVerified = &ok
				row.SurvivalFidelity = &fid
				fmt.Fprintf(os.Stderr, "mirror-verify: FAIL %s/%s: %v\n", e.Name, rep.Router, err)
			default:
				ok := true
				row.MirrorVerified = &ok
				row.SurvivalFidelity = &fid
			}
		}
		rows = append(rows, row)
	}
	for _, e := range suite(quick) {
		pc := prepareOne(e.Build(), topo)
		q := transpileOne(pc, transpile.SABRE, false, nil, rc)
		m := transpileOne(pc, transpile.MIRAGE, true, nil, rc)
		addRow(e, q)
		addRow(e, m)
		fmt.Printf("%-22s | %9.1f %9.1f | %9.0f %9.0f | %6d %6d | %7.1f%% | %4d+%d/%d\n",
			e.Name, q.DepthPulses, m.DepthPulses, q.TotalBasisGates, m.TotalBasisGates,
			q.SwapsInserted, m.SwapsInserted, 100*m.MirrorAcceptRate,
			q.TrialsExecuted, m.TrialsExecuted, m.TrialsBudgeted)
		sumDepthQ += q.DepthPulses
		sumDepthM += m.DepthPulses
		sumGatesQ += q.TotalBasisGates
		sumGatesM += m.TotalBasisGates
		sumSwapsQ += float64(q.SwapsInserted)
		sumSwapsM += float64(m.SwapsInserted)
		if q.DepthPulses > 0 {
			wDepth += (q.DepthPulses - m.DepthPulses) / q.DepthPulses
		}
		if q.TotalBasisGates > 0 {
			wGates += (q.TotalBasisGates - m.TotalBasisGates) / q.TotalBasisGates
		}
		if q.SwapsInserted > 0 {
			wSwaps += (float64(q.SwapsInserted) - float64(m.SwapsInserted)) / float64(q.SwapsInserted)
		}
		count++
	}
	fmt.Printf("\naverage reductions: depth %.2f%%, total gates %.2f%%, swaps %.2f%%\n",
		100*wDepth/float64(count), 100*wGates/float64(count), 100*wSwaps/float64(count))
	fmt.Printf("weighted reductions: depth %.2f%%, gates %.2f%%, swaps %.2f%%\n",
		100*(sumDepthQ-sumDepthM)/sumDepthQ,
		100*(sumGatesQ-sumGatesM)/sumGatesQ,
		100*(sumSwapsQ-sumSwapsM)/sumSwapsQ)
	fmt.Printf("(paper heavy-hex: depth -31.19%%, gates -16.97%%, swaps -56.19%%;\n")
	fmt.Printf(" paper square:    depth -29.58%%, gates -10.25%%, swaps -59.86%%)\n")
	total := time.Since(start)
	fmt.Printf("total runtime: %s\n", total.Round(time.Millisecond))
	var kernelRows []bench.KernelRow
	if rc.kernels {
		fmt.Println("\nnumeric-kernel lane (-benchmem):")
		var err error
		kernelRows, err = bench.RunKernelBenchmarks()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, k := range kernelRows {
			fmt.Printf("  %-28s %12.0f ns/op %8d B/op %6d allocs/op\n",
				k.Name, k.NsPerOp, k.BytesPerOp, k.AllocsPerOp)
		}
	}
	if jsonPath != "" {
		f := &bench.RoutingBenchFile{
			Topology:            topo.Name,
			LayoutTrials:        rc.layout.LayoutTrials,
			RoutingTrials:       rc.layout.RoutingTrials,
			ConvergencePatience: rc.patience,
			Seed:                rc.layout.Seed,
			Parallelism:         pool.Size(rc.layout.Parallelism),
			GOMAXPROCS:          runtime.GOMAXPROCS(0),
			TotalWallMS:         float64(total.Microseconds()) / 1000,
			Cache:               rc.cacheStats(),
			Fleet:               rc.fleetStats(),
			Rows:                rows,
			Kernels:             kernelRows,
		}
		if err := f.WriteFile(jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", jsonPath, len(f.Rows))
	}
	if verifyFailures > 0 {
		fmt.Fprintf(os.Stderr, "mirror-verify: %d row(s) violated the survival identity\n", verifyFailures)
		os.Exit(1)
	}
}

// runMirror is the mirror-circuit semantic gate: every mirror-family
// suite row is transpiled with both routers and the output is checked
// against its analytically-known survival bitstring — no reference
// transpiler needed, the mirror construction itself is the oracle. Any
// violation (including a routed footprint too wide to verify, which on
// the gate's small topologies indicates a routing bug) exits non-zero
// after the JSON document is written, so CI still gets the artifact.
func runMirror(rc *runConfig, topo *topology.Topology, quick bool, jsonPath string) {
	var entries []bench.Entry
	for _, e := range suite(quick) {
		if e.Mirror != nil {
			entries = append(entries, e)
		}
	}
	fmt.Printf("Mirror-circuit semantic gate on %s (%dx%d trials, tol %.0e, %d circuits)\n",
		topo.Name, rc.layout.LayoutTrials, rc.layout.RoutingTrials, rc.mirrorTol, len(entries))
	fmt.Printf("%-22s %-8s | %8s | %18s | %9s %6s\n",
		"circuit", "router", "verdict", "survival-fidelity", "depth", "swaps")
	var rows []bench.RoutingRow
	failures := 0
	start := time.Now()
	for _, e := range entries {
		gen := mirrorbench.Generate(*e.Mirror)
		pc := prepareOne(gen.Circuit, topo)
		for _, router := range []transpile.Router{transpile.SABRE, transpile.MIRAGE} {
			rep := transpileOne(pc, router, router == transpile.MIRAGE, nil, rc)
			fid, err := mirrorbench.Verify(rep.Routed, rep.FinalLayout, gen.Expected, rc.mirrorTol)
			ok := err == nil
			verdict := "pass"
			if err != nil {
				failures++
				verdict = "FAIL"
				fmt.Fprintf(os.Stderr, "mirror-verify: %s/%s: %v\n", e.Name, rep.Router, err)
			}
			rows = append(rows, bench.RoutingRow{
				Seq:     len(rows),
				Circuit: e.Name, Router: rep.Router,
				WallMS:      float64(rep.Runtime.Microseconds()) / 1000,
				DepthPulses: rep.DepthPulses, TotalGates: rep.TotalBasisGates,
				Swaps: rep.SwapsInserted, Mirrors: rep.MirrorsUsed,
				TrialsExecuted: rep.TrialsExecuted, TrialsBudgeted: rep.TrialsBudgeted,
				MirrorVerified: &ok, SurvivalFidelity: &fid,
			})
			fmt.Printf("%-22s %-8s | %8s | %18.15f | %9.1f %6d\n",
				e.Name, rep.Router, verdict, fid, rep.DepthPulses, rep.SwapsInserted)
		}
	}
	total := time.Since(start)
	fmt.Printf("total runtime: %s\n", total.Round(time.Millisecond))
	if jsonPath != "" {
		f := &bench.RoutingBenchFile{
			Topology:            topo.Name,
			LayoutTrials:        rc.layout.LayoutTrials,
			RoutingTrials:       rc.layout.RoutingTrials,
			ConvergencePatience: rc.patience,
			Seed:                rc.layout.Seed,
			Parallelism:         pool.Size(rc.layout.Parallelism),
			GOMAXPROCS:          runtime.GOMAXPROCS(0),
			TotalWallMS:         float64(total.Microseconds()) / 1000,
			Cache:               rc.cacheStats(),
			Fleet:               rc.fleetStats(),
			Rows:                rows,
		}
		if err := f.WriteFile(jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", jsonPath, len(f.Rows))
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "mirror gate: %d/%d rows violated the survival identity\n", failures, len(rows))
		os.Exit(1)
	}
	fmt.Printf("mirror gate: all %d rows preserved their survival bitstring\n", len(rows))
}
