// Command benchdiff compares two BENCH_routing.json files (as written
// by cmd/benchsuite -fig 12) and reports per-row and aggregate deltas.
// CI runs it against the previous workflow run's artifact to track the
// performance trajectory across PRs:
//
//	benchdiff old.json new.json
//
// Quality metrics (depth, gates, swaps) are seed-deterministic, so any
// delta there is a behaviour change worth explaining in review; wall
// times vary with hardware and are reported as context only. With
// -max-depth-regress set, the exit code turns a quality regression
// beyond the threshold into a CI failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func pct(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "   0.0%"
		}
		return "    new"
	}
	return fmt.Sprintf("%+6.1f%%", 100*(new-old)/old)
}

func main() {
	maxDepthRegress := flag.Float64("max-depth-regress", 0,
		"fail (exit 1) if any row's depth_pulses regresses by more than this percentage (0 = report only)")
	allowAllocRegress := flag.Bool("allow-alloc-regress", false,
		"report kernel allocs/op increases without failing (they fail by default: alloc counts are deterministic)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-depth-regress PCT] OLD.json NEW.json")
		os.Exit(2)
	}
	oldF, err := bench.ReadRoutingBenchFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	newF, err := bench.ReadRoutingBenchFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("benchdiff: %s -> %s\n", flag.Arg(0), flag.Arg(1))
	fmt.Printf("old: %s trials=%dx%d patience=%d seed=%d parallel=%d wall=%.0fms\n",
		oldF.Topology, oldF.LayoutTrials, oldF.RoutingTrials, oldF.ConvergencePatience,
		oldF.Seed, oldF.Parallelism, oldF.TotalWallMS)
	fmt.Printf("new: %s trials=%dx%d patience=%d seed=%d parallel=%d wall=%.0fms (%s)\n",
		newF.Topology, newF.LayoutTrials, newF.RoutingTrials, newF.ConvergencePatience,
		newF.Seed, newF.Parallelism, newF.TotalWallMS, pct(oldF.TotalWallMS, newF.TotalWallMS))
	comparable := oldF.Topology == newF.Topology && oldF.Seed == newF.Seed &&
		oldF.LayoutTrials == newF.LayoutTrials && oldF.RoutingTrials == newF.RoutingTrials
	if !comparable {
		fmt.Println("note: run configurations differ; quality deltas are not apples-to-apples")
	}

	// Rows are paired by (circuit, router) key. Rows missing from the
	// baseline — a benchmark added by the change under test, e.g. a new
	// dispatch lane — are warned about but never fail the diff: gating
	// on them would break the first CI comparison after every merge
	// that extends the suite. Same for rows the new run dropped.
	al := bench.AlignRows(oldF.Rows, newF.Rows)

	fmt.Printf("\n%-22s %-7s | %16s | %16s | %13s | %16s | %11s\n",
		"circuit", "router", "depth", "gates", "swaps", "wall_ms", "trials")
	var regressions []string
	for _, pair := range al.Pairs {
		o, n := pair[0], pair[1]
		fmt.Printf("%-22s %-7s | %7.1f %s | %7.0f %s | %5d %s | %7.1f %s | %4d->%-4d\n",
			n.Circuit, n.Router,
			n.DepthPulses, pct(o.DepthPulses, n.DepthPulses),
			n.TotalGates, pct(o.TotalGates, n.TotalGates),
			n.Swaps, pct(float64(o.Swaps), float64(n.Swaps)),
			n.WallMS, pct(o.WallMS, n.WallMS),
			o.TrialsExecuted, n.TrialsExecuted)
		if comparable && *maxDepthRegress > 0 && o.DepthPulses > 0 {
			regress := 100 * (n.DepthPulses - o.DepthPulses) / o.DepthPulses
			if regress > *maxDepthRegress {
				regressions = append(regressions,
					fmt.Sprintf("%s/%s depth +%.1f%%", n.Circuit, n.Router, regress))
			}
		}
	}
	for _, n := range al.Added {
		fmt.Printf("%-22s %-7s | warning: no baseline row (new benchmark; this run seeds it)\n", n.Circuit, n.Router)
	}
	for _, k := range al.Removed {
		fmt.Printf("%-22s %-7s | warning: row dropped in new run\n", k.Circuit, k.Router)
	}
	if oldF.Cache != nil && newF.Cache != nil {
		// Warn-only context, like wall time: hit rate moves with cache
		// warmth (snapshot seeding, -repeat passes, fleet size), not
		// with routing quality, so it never fails the diff.
		oc, nc := oldF.Cache, newF.Cache
		fmt.Printf("\ncost cache: hit rate %.1f%% -> %.1f%% (%s; warm-start entries %d -> %d)\n",
			100*oc.HitRate, 100*nc.HitRate, pct(oc.HitRate, nc.HitRate),
			oc.LoadedEntries, nc.LoadedEntries)
		if oc.HitRate > nc.HitRate {
			fmt.Println("warning: fleet hit rate dropped — cache warm-up may have regressed (warn-only)")
		}
		if oc.SnapshotVersion != 0 || nc.SnapshotVersion != 0 {
			fmt.Printf("warm tier: snapshot v%d -> v%d, warm entries %d -> %d, folded %d -> %d jobs (%d -> %d entries)\n",
				oc.SnapshotVersion, nc.SnapshotVersion, oc.WarmEntries, nc.WarmEntries,
				oc.FoldedJobs, nc.FoldedJobs, oc.FoldedEntries, nc.FoldedEntries)
		}
	}
	if oldF.Fleet != nil && newF.Fleet != nil &&
		(oldF.Fleet.WarmSends+oldF.Fleet.WarmSkips+newF.Fleet.WarmSends+newF.Fleet.WarmSkips > 0) {
		fmt.Printf("warm transfers: sent %d -> %d (%d -> %d B), skipped %d -> %d (%d -> %d B saved)\n",
			oldF.Fleet.WarmSends, newF.Fleet.WarmSends, oldF.Fleet.WarmBytesSent, newF.Fleet.WarmBytesSent,
			oldF.Fleet.WarmSkips, newF.Fleet.WarmSkips, oldF.Fleet.WarmBytesSkipped, newF.Fleet.WarmBytesSkipped)
	}
	fmt.Printf("matched %d of %d rows (%d new, %d dropped — warnings only)\n",
		len(al.Pairs), len(newF.Rows), len(al.Added), len(al.Removed))

	// Kernel lane: ns/op is hardware-dependent context; allocs/op is
	// deterministic for deterministic code, so any increase on a
	// matched kernel is a real hot-path regression and fails the diff
	// unless explicitly waived.
	var allocRegressions []string
	if len(oldF.Kernels) > 0 && len(newF.Kernels) == 0 {
		// The gate must not vanish silently: a baseline with kernel
		// rows against a new run without them means -kernels was
		// dropped, and the next cached baseline would disable the
		// check for good while CI stays green.
		allocRegressions = append(allocRegressions,
			"kernel lane missing from the new run (baseline has it — was -kernels dropped?)")
	}
	if len(newF.Kernels) > 0 {
		oldK := make(map[string]bench.KernelRow, len(oldF.Kernels))
		for _, k := range oldF.Kernels {
			oldK[k.Name] = k
		}
		fmt.Printf("\n%-28s | %22s | %17s\n", "kernel", "ns/op", "allocs/op")
		for _, k := range newF.Kernels {
			o, ok := oldK[k.Name]
			if !ok {
				fmt.Printf("%-28s | %12.0f     (new) | %8d    (new)\n", k.Name, k.NsPerOp, k.AllocsPerOp)
				continue
			}
			fmt.Printf("%-28s | %12.0f %s | %8d %s\n",
				k.Name, k.NsPerOp, pct(o.NsPerOp, k.NsPerOp),
				k.AllocsPerOp, pct(float64(o.AllocsPerOp), float64(k.AllocsPerOp)))
			if k.AllocsPerOp > o.AllocsPerOp {
				allocRegressions = append(allocRegressions,
					fmt.Sprintf("%s allocs/op %d -> %d", k.Name, o.AllocsPerOp, k.AllocsPerOp))
			}
		}
	}

	failed := false
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "depth regressions beyond %.1f%%:\n", *maxDepthRegress)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		failed = true
	}
	if len(allocRegressions) > 0 {
		fmt.Fprintln(os.Stderr, "kernel allocation regressions:")
		for _, r := range allocRegressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		if *allowAllocRegress {
			fmt.Fprintln(os.Stderr, "  (waived by -allow-alloc-regress)")
		} else {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
