// mirror_selftest demonstrates the self-verifying mirror workloads: a
// mirror circuit composes a random forward half, a central Pauli
// layer, and the exact inverse half, so its ideal output is a known
// basis state. Transpiling one and checking the survival amplitude is
// an end-to-end correctness test of the whole routing stack — no
// reference transpiler required. The program exits non-zero if any
// transpiled mirror violates its survival identity.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	topo := mirage.Grid(3, 4)
	layout := mirage.LayoutOptions{
		LayoutTrials: 4, RoutingTrials: 4, FwdBwdPasses: 2, Seed: 1,
	}

	specs := []mirage.MirrorSpec{
		{Kind: mirage.MirrorRandomizedClifford, Qubits: 5, Layers: 4, Seed: 1},
		{Kind: mirage.MirrorQuantumVolume, Qubits: 4, Layers: 3, Seed: 7},
	}

	fmt.Printf("%-22s %-8s %-10s %s\n", "circuit", "router", "expected", "survival-fidelity")
	failures := 0
	for _, spec := range specs {
		m := mirage.GenerateMirror(spec)
		for _, router := range []mirage.Router{mirage.SABRE, mirage.MIRAGE} {
			rep, err := mirage.Transpile(m.Circuit, topo, mirage.Options{
				Router:         router,
				DepthSelection: router == mirage.MIRAGE,
				Layout:         layout,
			})
			if err != nil {
				log.Fatal(err)
			}
			fid, err := mirage.VerifyMirror(rep.Routed, rep.FinalLayout, m.Expected, 1e-9)
			if err != nil {
				failures++
				fmt.Printf("%-22s %-8s FAILED: %v\n", spec.Name(), rep.Router, err)
				continue
			}
			fmt.Printf("%-22s %-8s %v %.15f\n", spec.Name(), rep.Router, m.Expected, fid)
		}
	}
	if failures > 0 {
		log.Fatalf("%d mirror(s) violated the survival identity", failures)
	}
	fmt.Println("\nall transpiled mirrors preserved their survival bitstring")
}
