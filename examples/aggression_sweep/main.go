// aggression_sweep reproduces the spirit of paper Fig. 10: the same
// circuits transpiled with each fixed mirror-aggression level and with
// the paper's mixed 5/45/45/5 distribution, showing that no single
// level wins everywhere and the mix is a robust default.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	topo := mirage.SquareLattice66()
	layout := mirage.LayoutOptions{LayoutTrials: 6, RoutingTrials: 6, FwdBwdPasses: 2, Seed: 1}

	workloads := []*mirage.Circuit{
		mirage.TwoLocal(8),
		mirage.QFT(12),
	}
	for _, e := range mirage.BenchmarkSuite() {
		if e.Name == "wstate_n27" || e.Name == "bigadder_n18" {
			workloads = append(workloads, e.Build())
		}
	}

	fmt.Printf("%-16s %8s %8s %8s %8s %8s %8s\n",
		"circuit", "qiskit", "a0", "a1", "a2", "a3", "mixed")
	for _, circ := range workloads {
		base, err := mirage.Transpile(circ, topo, mirage.Options{
			Router: mirage.SABRE, Layout: layout, SkipTrivialLayout: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		row := fmt.Sprintf("%-16s %8.0f", circ.Name, base.DepthPulses)
		for lvl := mirage.AggressionNever; lvl <= mirage.AggressionAlways; lvl++ {
			a := lvl
			rep, err := mirage.Transpile(circ, topo, mirage.Options{
				Router: mirage.MIRAGE, DepthSelection: true,
				FixedAggression: &a, Layout: layout, SkipTrivialLayout: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" %8.0f", rep.DepthPulses)
		}
		mixed, err := mirage.Transpile(circ, topo, mirage.Options{
			Router: mirage.MIRAGE, DepthSelection: true,
			Layout: layout, SkipTrivialLayout: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		row += fmt.Sprintf(" %8.0f", mixed.DepthPulses)
		fmt.Println(row)
	}
	fmt.Println("\n(depths in sqrt-iSWAP pulses; lower is better — as in the paper,")
	fmt.Println(" the best fixed level varies per circuit and the mixed strategy")
	fmt.Println(" tracks the per-circuit winner)")
}
