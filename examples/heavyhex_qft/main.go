// heavyhex_qft routes an 18-qubit QFT onto the paper's 57-qubit
// heavy-hex machine (the Fig. 12a/b scenario) and prints a full
// before/after comparison, including the per-region decomposition
// breakdown of the routed circuit.
package main

import (
	"fmt"
	"log"

	mirpub "repro"
	"repro/internal/circuit"
	"repro/internal/polytope"
)

func main() {
	circ := mirpub.QFT(18)
	topo := mirpub.HeavyHex57()

	fmt.Printf("routing %s (%d 2Q gates) onto %s (%d qubits)\n\n",
		circ.Name, circ.Count2Q(), topo.Name, topo.NumQubits)

	layout := mirpub.LayoutOptions{LayoutTrials: 8, RoutingTrials: 8, FwdBwdPasses: 3, Seed: 1}
	baseline, err := mirpub.Transpile(circ, topo, mirpub.Options{
		Router: mirpub.SABRE, Layout: layout,
	})
	if err != nil {
		log.Fatal(err)
	}
	routed, err := mirpub.Transpile(circ, topo, mirpub.Options{
		Router: mirpub.MIRAGE, DepthSelection: true, Layout: layout,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SABRE :", baseline.Summary())
	fmt.Println("MIRAGE:", routed.Summary())
	fmt.Printf("\ndepth  reduction: %6.1f%%   (paper avg on heavy-hex: 31.2%%)\n",
		100*(baseline.DepthPulses-routed.DepthPulses)/baseline.DepthPulses)
	fmt.Printf("gate   reduction: %6.1f%%   (paper avg on heavy-hex: 17.0%%)\n",
		100*(baseline.TotalBasisGates-routed.TotalBasisGates)/baseline.TotalBasisGates)

	// Decomposition breakdown: how many blocks land in each coverage
	// region of the sqrt-iSWAP basis.
	cov := polytope.NewISwapRootCoverage(2)
	cache := polytope.NewCostCache(0)
	histo := map[int]int{}
	for _, op := range routed.Reconsolidated.Ops {
		if !op.Is2Q() {
			continue
		}
		_, k := cache.CostOf(cov, circuit.OpCoordinate(op), false)
		histo[k]++
	}
	fmt.Println("\nMIRAGE output blocks by sqrt-iSWAP applications k:")
	for k := 1; k <= cov.MaxK(); k++ {
		if histo[k] > 0 {
			fmt.Printf("  k=%d: %4d blocks\n", k, histo[k])
		}
	}
}
