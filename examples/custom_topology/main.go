// custom_topology shows the library on a user-defined device: a
// 10-qubit "ladder" coupling graph, plus direct use of the
// Weyl-chamber analysis API — computing gate coordinates, mirrors, and
// asking the coverage polytopes how many basis pulses a gate needs.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
	"repro/internal/gates"
)

func main() {
	// A 2 x 5 ladder: rungs plus rails.
	var edges [][2]int
	for i := 0; i < 4; i++ {
		edges = append(edges, [2]int{i, i + 1})     // top rail
		edges = append(edges, [2]int{i + 5, i + 6}) // bottom rail
	}
	for i := 0; i < 5; i++ {
		edges = append(edges, [2]int{i, i + 5}) // rungs
	}
	topo := mirage.NewTopology("ladder-2x5", 10, edges)

	circ := mirage.TwoLocal(10)
	rep, err := mirage.Transpile(circ, topo, mirage.Options{
		Router: mirage.MIRAGE, DepthSelection: true,
		Layout: mirage.LayoutOptions{LayoutTrials: 6, RoutingTrials: 6, FwdBwdPasses: 2, Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("custom ladder device:", rep.Summary())

	// --- Weyl-chamber analysis API ---
	fmt.Println("\ngate analysis in the sqrt-iSWAP basis:")
	cov := mirage.SqrtISwapCoverage()
	for _, g := range []mirage.Gate{
		gates.CX(), gates.SWAP(), gates.ISwap(), gates.CPhase(math.Pi / 3), gates.RXX(0.8),
	} {
		coord, err := mirage.CoordinateOf(g.Matrix())
		if err != nil {
			log.Fatal(err)
		}
		mirror := mirage.Mirror(coord)
		fmt.Printf("  %-10s coord=%v cost=%.1f | mirror=%v mirror-cost=%.1f\n",
			g.String(), coord, cov.CostOf(coord, false),
			mirror, cov.CostOf(mirror, false))
	}

	// Haar-random gates: how often is the mirror strictly cheaper?
	rng := rand.New(rand.NewSource(42))
	cheaper := 0
	const n = 300
	for i := 0; i < n; i++ {
		c := mirage.HaarSampleCoordinate(rng)
		if cov.CostOf(mirage.Mirror(c), false) < cov.CostOf(c, false) {
			cheaper++
		}
	}
	fmt.Printf("\nHaar-random gates whose mirror decomposes strictly cheaper: %.1f%%\n",
		100*float64(cheaper)/n)
	fmt.Println("(this surplus is exactly what MIRAGE's router exploits)")
}
