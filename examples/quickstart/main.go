// Quickstart: build a small circuit, transpile it onto a line device
// with both the SABRE baseline and MIRAGE, and print the paper's
// metrics side by side.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A toy workload: 5-qubit QFT. Any circuit built with the public
	// API (or parsed from OpenQASM 2) works the same way.
	circ := mirage.QFT(5)
	topo := mirage.Line(5)

	fmt.Printf("input: %s — %d qubits, %d two-qubit gates\n\n",
		circ.Name, circ.NumQubits, circ.Count2Q())

	baseline, err := mirage.Transpile(circ, topo, mirage.Options{
		Router: mirage.SABRE,
	})
	if err != nil {
		log.Fatal(err)
	}
	routed, err := mirage.Transpile(circ, topo, mirage.Options{
		Router:         mirage.MIRAGE,
		DepthSelection: true, // post-select trials on estimated depth
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SABRE :", baseline.Summary())
	fmt.Println("MIRAGE:", routed.Summary())
	fmt.Printf("\ndepth reduction: %.1f%% (%.1f -> %.1f sqrt-iSWAP pulses)\n",
		100*(baseline.DepthPulses-routed.DepthPulses)/baseline.DepthPulses,
		baseline.DepthPulses, routed.DepthPulses)

	// The routed circuit is ordinary data: inspect it, count mirrors,
	// or emit it as OpenQASM 2.
	fmt.Printf("mirror gates accepted: %d of %d 2Q gates\n",
		routed.MirrorsUsed, routed.Total2QBlocks)
}
