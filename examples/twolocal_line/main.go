// twolocal_line reproduces paper Fig. 8: the fully entangled TwoLocal
// ansatz on 4 qubits mapped to a line. Qiskit level 3 needs 16
// sqrt-iSWAP pulses with 3 SWAPs; MIRAGE absorbs the SWAPs into mirror
// gates and finds the same unitary in 10 pulses.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	circ := mirage.TwoLocal(4)
	topo := mirage.Line(4)

	fmt.Println("Fig. 8 — TwoLocal (full entanglement, 4 qubits) on a 4-qubit line")
	fmt.Printf("input: %d CX gates across all %d qubit pairs\n\n", circ.Count2Q(), 6)

	opts := func(r mirage.Router) mirage.Options {
		return mirage.Options{
			Router:         r,
			DepthSelection: r == mirage.MIRAGE,
			Layout: mirage.LayoutOptions{
				LayoutTrials: 20, RoutingTrials: 20, FwdBwdPasses: 4, Seed: 1,
			},
		}
	}

	baseline, err := mirage.Transpile(circ, topo, opts(mirage.SABRE))
	if err != nil {
		log.Fatal(err)
	}
	routed, err := mirage.Transpile(circ, topo, opts(mirage.MIRAGE))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-18s %14s %8s %9s\n", "", "pulse depth", "swaps", "mirrors")
	fmt.Printf("%-18s %14.0f %8d %9d   (paper: 16 pulses, 3 swaps)\n",
		"Qiskit/SABRE", baseline.DepthPulses, baseline.SwapsInserted, 0)
	fmt.Printf("%-18s %14.0f %8d %9d   (paper: 10 pulses, 0 swaps)\n",
		"MIRAGE", routed.DepthPulses, routed.SwapsInserted, routed.MirrorsUsed)

	fmt.Println("\nrouted MIRAGE circuit (physical wires):")
	for _, op := range routed.Routed.Ops {
		if op.Is2Q() {
			tag := ""
			if op.Mirrored {
				tag = "   <- mirror gate (mirage SWAP absorbed)"
			}
			if op.RouterSwap {
				tag = "   <- router SWAP"
			}
			fmt.Printf("  %v%s\n", op, tag)
		}
	}
}
