package mirage

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gates"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	circ := QFT(4)
	topo := Line(4)
	rep, err := Transpile(circ, topo, Options{
		Router:         MIRAGE,
		DepthSelection: true,
		Layout:         LayoutOptions{LayoutTrials: 3, RoutingTrials: 3, FwdBwdPasses: 2, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DepthPulses <= 0 || rep.Routed == nil {
		t.Fatal("facade transpile returned an empty report")
	}
}

func TestFacadeTranspileBatch(t *testing.T) {
	topo := Line(6)
	circs := []*Circuit{QFT(4), GHZ(5), TwoLocal(4)}
	cache := NewCostCache(0)
	reports, err := TranspileBatch(circs, topo, Options{
		Router:         MIRAGE,
		DepthSelection: true,
		Layout:         LayoutOptions{LayoutTrials: 2, RoutingTrials: 2, FwdBwdPasses: 1, Seed: 2},
		Parallelism:    2,
		Cache:          cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(circs) {
		t.Fatalf("got %d reports for %d circuits", len(reports), len(circs))
	}
	for i, rep := range reports {
		if rep == nil || rep.Routed == nil {
			t.Fatalf("report %d is empty", i)
		}
	}
	if hits, misses := cache.Stats(); hits+misses == 0 {
		t.Fatal("shared cost cache was never consulted")
	}
}

func TestFacadeQASMRoundTrip(t *testing.T) {
	c := NewCircuit("rt", 2)
	c.Add(gates.H(), 0)
	c.Add(gates.CX(), 0, 1)
	parsed, err := ParseQASM(WriteQASM(c))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Count2Q() != 1 {
		t.Fatal("facade QASM round trip lost gates")
	}
}

func TestFacadeMirrorKnownPair(t *testing.T) {
	coord, err := CoordinateOf(gates.CX().Matrix())
	if err != nil {
		t.Fatal(err)
	}
	mirror := Mirror(coord)
	// CNOT's mirror is the iSWAP class: (pi/4, pi/4, 0).
	if math.Abs(mirror.X-math.Pi/4) > 1e-7 || math.Abs(mirror.Y-math.Pi/4) > 1e-7 ||
		math.Abs(mirror.Z) > 1e-7 {
		t.Fatalf("Mirror(CNOT) = %v, want iSWAP class", mirror)
	}
}

func TestFacadeCoverageCosts(t *testing.T) {
	cov := SqrtISwapCoverage()
	cx, _ := CoordinateOf(gates.CX().Matrix())
	sw, _ := CoordinateOf(gates.SWAP().Matrix())
	if cov.CostOf(cx, false) != 1.0 {
		t.Fatal("CNOT must cost two sqrt-iSWAP pulses (1.0)")
	}
	if cov.CostOf(sw, false) != 1.5 {
		t.Fatal("SWAP must cost three sqrt-iSWAP pulses (1.5)")
	}
	if cov.CostOf(sw, true) != 0 {
		t.Fatal("mirrored SWAP must be free")
	}
}

func TestFacadeHaarScoreSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	res := HaarScore(SqrtISwapCoverage(), HaarStrategy{Mirror: true}, 150, 3)
	if res.Score <= 0.9 || res.Score >= 1.2 {
		t.Fatalf("mirror Haar score %.3f out of plausible range", res.Score)
	}
}

func TestFacadeBenchmarkSuite(t *testing.T) {
	// 15 Table III rows plus the self-verifying Mirror family.
	suite := BenchmarkSuite()
	mirrors := 0
	for _, e := range suite {
		if e.Mirror != nil {
			mirrors++
		}
	}
	if paper := len(suite) - mirrors; paper != 15 {
		t.Fatalf("suite has %d paper circuits, want 15 (Table III)", paper)
	}
	if mirrors == 0 || mirrors != len(MirrorBenchmarkSuite()) {
		t.Fatalf("suite has %d mirror rows, want %d", mirrors, len(MirrorBenchmarkSuite()))
	}
}

func TestFacadeMirrorRoundTrip(t *testing.T) {
	spec := MirrorSpec{Kind: MirrorRandomizedClifford, Qubits: 4, Layers: 3, Seed: 11}
	m := GenerateMirror(spec)
	rep, err := Transpile(m.Circuit, Grid(2, 3), Options{
		Router: MIRAGE, DepthSelection: true,
		Layout: LayoutOptions{LayoutTrials: 2, RoutingTrials: 2, FwdBwdPasses: 1, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	fid, err := VerifyMirror(rep.Routed, rep.FinalLayout, m.Expected, 1e-9)
	if err != nil {
		t.Fatalf("transpiled mirror rejected: %v (fidelity %v)", err, fid)
	}
}

func TestFacadeCustomTopology(t *testing.T) {
	topo := NewTopology("tri", 3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	if !topo.HasEdge(0, 2) || topo.Distance(0, 2) != 1 {
		t.Fatal("custom topology misbehaves")
	}
}

func TestFacadeHaarSampleDeterministic(t *testing.T) {
	a := HaarSampleCoordinate(rand.New(rand.NewSource(5)))
	b := HaarSampleCoordinate(rand.New(rand.NewSource(5)))
	if !a.ApproxEqual(b, 0) {
		t.Fatal("Haar sampling is not deterministic for equal seeds")
	}
}

// TestLocalMinimaEscape is the Fig. 9 study as a test: a single greedy
// trial can land in a worse minimum than the best of several
// independent trials; the trial machinery must recover the best.
func TestLocalMinimaEscape(t *testing.T) {
	circ := NewCircuit("fig9", 4)
	circ.Add(gates.CX(), 0, 1)
	circ.Add(gates.CX(), 2, 3)
	circ.Add(gates.CX(), 0, 2)
	circ.Add(gates.CX(), 1, 3)
	circ.Add(gates.CX(), 0, 3)
	topo := Line(4)

	single, err := Transpile(circ, topo, Options{
		Router: MIRAGE, DepthSelection: true,
		Layout:            LayoutOptions{LayoutTrials: 1, RoutingTrials: 1, FwdBwdPasses: 1, Seed: 3},
		SkipTrivialLayout: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Transpile(circ, topo, Options{
		Router: MIRAGE, DepthSelection: true,
		Layout:            LayoutOptions{LayoutTrials: 10, RoutingTrials: 10, FwdBwdPasses: 3, Seed: 3},
		SkipTrivialLayout: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if many.DepthPulses > single.DepthPulses {
		t.Fatalf("more trials made the result worse: %g vs %g",
			many.DepthPulses, single.DepthPulses)
	}
}
