// Benchmarks regenerating every table and figure of the paper's
// evaluation at smoke scale. Each benchmark reports its headline
// numbers via b.ReportMetric so `go test -bench=. -benchmem` prints
// the reproduced results; the cmd/ tools run the same experiments at
// full scale (see EXPERIMENTS.md for paper-vs-measured values).
package mirage

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/haar"
	"repro/internal/linalg"
	mirpkg "repro/internal/mirage"
	"repro/internal/polytope"
	"repro/internal/sabre"
	"repro/internal/topology"
	"repro/internal/transpile"
	"repro/internal/weyl"
)

func quickLayout(seed int64) sabre.LayoutOptions {
	return sabre.LayoutOptions{LayoutTrials: 3, RoutingTrials: 4, FwdBwdPasses: 2, Seed: seed}
}

// BenchmarkFig3Coverage reproduces the Fig. 3 coverage volumes: the
// k=2 polytopes of CNOT (0% volume) and sqrt-iSWAP (79.0% standard,
// 94.4% with mirrors).
func BenchmarkFig3Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(3))
		const n = 1500
		cnot := polytope.HaarVolume(polytope.CNOTk2(), n, rng)
		std := polytope.HaarVolume(polytope.SqrtISwapK2(), n, rng)
		mir := polytope.HaarVolumeMirror(polytope.SqrtISwapK2(), n, rng)
		b.ReportMetric(cnot*100, "cnot_k2_vol_%")
		b.ReportMetric(std*100, "siswap_k2_vol_%")
		b.ReportMetric(mir*100, "siswap_k2_mirror_vol_%")
	}
}

// BenchmarkFig4Coverage reproduces the Fig. 4 coverage volumes for the
// 3rd and 4th roots of iSWAP at k=2, standard vs mirror-inclusive.
func BenchmarkFig4Coverage(b *testing.B) {
	regionK := func(cov *polytope.CoverageSet, k int) *polytope.Convex {
		for _, r := range cov.Regions {
			if r.K == k {
				return r.Region
			}
		}
		b.Fatalf("no k=%d region", k)
		return nil
	}
	r3 := regionK(polytope.NewISwapRootCoverage(3), 2)
	r4 := regionK(polytope.NewISwapRootCoverage(4), 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(4))
		const n = 800
		v3 := polytope.HaarVolume(r3, n, rng)
		v3m := polytope.HaarVolumeMirror(r3, n, rng)
		v4 := polytope.HaarVolume(r4, n, rng)
		v4m := polytope.HaarVolumeMirror(r4, n, rng)
		b.ReportMetric(v3*100, "r3_k2_vol_%")
		b.ReportMetric(v3m*100, "r3_k2_mirror_vol_%")
		b.ReportMetric(v4*100, "r4_k2_vol_%")
		b.ReportMetric(v4m*100, "r4_k2_mirror_vol_%")
	}
}

// BenchmarkTableIHaarScores reproduces Table I: exact Haar scores and
// fidelities for sqrt/3rd/4th-root iSWAP, with and without mirrors.
func BenchmarkTableIHaarScores(b *testing.B) {
	cov := polytope.NewISwapRootCoverage(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := haar.Options{Samples: 600, Seed: 5}
		std := haar.Score(cov, haar.Strategy{}, opts)
		mir := haar.Score(cov, haar.Strategy{Mirror: true}, opts)
		b.ReportMetric(std.Score, "haar_siswap")
		b.ReportMetric(std.AvgFidelity, "fid_siswap")
		b.ReportMetric(mir.Score, "haar_siswap_mirror")
		b.ReportMetric(mir.AvgFidelity, "fid_siswap_mirror")
	}
}

// BenchmarkTableIIApproxHaarScores reproduces Table II: Haar scores
// with approximate decomposition enabled.
func BenchmarkTableIIApproxHaarScores(b *testing.B) {
	cov := polytope.NewISwapRootCoverage(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := haar.Options{Samples: 250, Seed: 6}
		std := haar.Score(cov, haar.Strategy{Approximate: true}, opts)
		mir := haar.Score(cov, haar.Strategy{Approximate: true, Mirror: true}, opts)
		b.ReportMetric(std.Score, "haar_siswap_approx")
		b.ReportMetric(mir.Score, "haar_siswap_approx_mirror")
		b.ReportMetric(mir.AvgFidelity, "fid_siswap_approx_mirror")
	}
}

// BenchmarkFig5Convergence reproduces the Fig. 5 Monte-Carlo
// convergence study for the 4th root of iSWAP: the exact and mirror
// series must approach their polytope-integration references.
func BenchmarkFig5Convergence(b *testing.B) {
	cov := polytope.NewISwapRootCoverage(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := haar.Options{Samples: 300, Seed: 7}
		exact := haar.Score(cov, haar.Strategy{}, opts)
		mirror := haar.Score(cov, haar.Strategy{Mirror: true}, opts)
		ref := haar.ReferenceScore(cov, false, 1200, 7)
		refM := haar.ReferenceScore(cov, true, 1200, 7)
		b.ReportMetric(exact.Series[len(exact.Series)-1], "series_exact_end")
		b.ReportMetric(ref, "reference_exact")
		b.ReportMetric(mirror.Series[len(mirror.Series)-1], "series_mirror_end")
		b.ReportMetric(refM, "reference_mirror")
	}
}

// BenchmarkFig6CphaseMirror reproduces the Fig. 6 study: every CPHASE
// gate lies inside the sqrt-iSWAP k=2 region while its pSWAP mirror
// does not (until k=3).
func BenchmarkFig6CphaseMirror(b *testing.B) {
	region := polytope.SqrtISwapK2()
	for i := 0; i < b.N; i++ {
		inCount, mirrorIn := 0, 0
		const steps = 40
		for s := 1; s <= steps; s++ {
			theta := 3.14159 * float64(s) / float64(steps)
			c := weyl.Coordinate{X: theta / 4, Y: 0, Z: 0} // CPhase(theta)
			if region.Contains(c, 1e-9) {
				inCount++
			}
			if region.Contains(weyl.Mirror(c), 1e-9) {
				mirrorIn++
			}
		}
		b.ReportMetric(float64(inCount), "cphase_in_k2")
		b.ReportMetric(float64(mirrorIn), "pswap_in_k2")
	}
}

// BenchmarkFig8TwoLocal reproduces Fig. 8: the TwoLocal(full, 4q)
// ansatz on a 4-qubit line — Qiskit-style SABRE vs MIRAGE pulse depth.
func BenchmarkFig8TwoLocal(b *testing.B) {
	topo := topology.Line(4)
	for i := 0; i < b.N; i++ {
		c := bench.TwoLocal(4)
		sr, err := transpile.Transpile(c, topo, transpile.Options{
			Router: transpile.SABRE, Layout: quickLayout(8),
		})
		if err != nil {
			b.Fatal(err)
		}
		mr, err := transpile.Transpile(c, topo, transpile.Options{
			Router: transpile.MIRAGE, DepthSelection: true, Layout: quickLayout(8),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sr.DepthPulses, "sabre_pulses")
		b.ReportMetric(mr.DepthPulses, "mirage_pulses")
		b.ReportMetric(float64(sr.SwapsInserted), "sabre_swaps")
		b.ReportMetric(float64(mr.SwapsInserted), "mirage_swaps")
	}
}

// BenchmarkFig9Trials reproduces the Fig. 9 local-minima study:
// independent routing trials of the same 4-qubit sub-circuit land in
// different minima; the trial spread is the reported metric.
func BenchmarkFig9Trials(b *testing.B) {
	topo := topology.Line(4)
	cov := polytope.NewISwapRootCoverage(2)
	w := mirpkg.GateWeight(cov, nil)
	for i := 0; i < b.N; i++ {
		c := circuit.New("fig9", 4)
		// The Fig. 9 sub-circuit: a reordered slice of TwoLocal.
		c.Add(gates.CX(), 0, 1)
		c.Add(gates.CX(), 2, 3)
		c.Add(gates.CX(), 0, 2)
		c.Add(gates.CX(), 1, 3)
		c.Add(gates.CX(), 0, 3)
		minD, maxD := 1e18, 0.0
		for trial := 0; trial < 8; trial++ {
			rng := rand.New(rand.NewSource(int64(trial + 1)))
			policy := mirpkg.NewPolicy(cov, nil, mirpkg.AggressionEqual)
			res, err := sabre.Route(c, topo, topology.TrivialLayout(4, 4), sabre.Options{}, rng, policy)
			if err != nil {
				b.Fatal(err)
			}
			d := res.Routed.Depth(w)
			if d < minD {
				minD = d
			}
			if d > maxD {
				maxD = d
			}
		}
		b.ReportMetric(minD*2, "best_pulses")
		b.ReportMetric(maxD*2, "worst_pulses")
	}
}

// BenchmarkFig10Aggression reproduces the Fig. 10 aggression study on
// scaled-down versions of its four circuits: per-level average depth.
func BenchmarkFig10Aggression(b *testing.B) {
	topo := topology.Grid(4, 4)
	circs := []*circuit.Circuit{
		bench.WState(12), bench.BigAdder(10), bench.QFT(10), bench.BernsteinVazirani(14, 9),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lvl := 0; lvl <= 3; lvl++ {
			a := mirpkg.Aggression(lvl)
			var total float64
			for _, c := range circs {
				rep, err := transpile.Transpile(c, topo, transpile.Options{
					Router: transpile.MIRAGE, DepthSelection: true,
					FixedAggression: &a, Layout: quickLayout(10),
					SkipTrivialLayout: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				total += rep.DepthPulses
			}
			b.ReportMetric(total/float64(len(circs)), fmt.Sprintf("avg_pulses_a%d", lvl))
		}
	}
}

// BenchmarkFig11PostSelection reproduces the Fig. 11 comparison:
// Qiskit-SABRE vs MIRAGE-Swaps vs MIRAGE-Depth average depth (the
// paper reports -24.1% and a further -7.5%).
func BenchmarkFig11PostSelection(b *testing.B) {
	topo := topology.SquareLattice66()
	circs := []*circuit.Circuit{bench.WState(16), bench.QFT(10), bench.TwoLocal(8)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var dq, ds, dd float64
		for _, c := range circs {
			q, err := transpile.Transpile(c, topo, transpile.Options{
				Router: transpile.SABRE, Layout: quickLayout(11), SkipTrivialLayout: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			s, err := transpile.Transpile(c, topo, transpile.Options{
				Router: transpile.MIRAGE, Layout: quickLayout(11), SkipTrivialLayout: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			d, err := transpile.Transpile(c, topo, transpile.Options{
				Router: transpile.MIRAGE, DepthSelection: true, Layout: quickLayout(11),
				SkipTrivialLayout: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			dq += q.DepthPulses
			ds += s.DepthPulses
			dd += d.DepthPulses
		}
		b.ReportMetric(dq, "qiskit_pulses")
		b.ReportMetric(ds, "mirage_swaps_pulses")
		b.ReportMetric(dd, "mirage_depth_pulses")
		b.ReportMetric(100*(dq-dd)/dq, "depth_reduction_%")
	}
}

// BenchmarkFig12HeavyHex reproduces the Fig. 12a/b heavy-hex study at
// smoke scale: depth and total 2Q gate reductions of MIRAGE vs SABRE.
func BenchmarkFig12HeavyHex(b *testing.B) {
	benchmarkFig12(b, topology.HeavyHex57())
}

// BenchmarkFig12SquareLattice reproduces Fig. 12c/d on the 6x6 square
// lattice.
func BenchmarkFig12SquareLattice(b *testing.B) {
	benchmarkFig12(b, topology.SquareLattice66())
}

func benchmarkFig12(b *testing.B, topo *topology.Topology) {
	circs := []*circuit.Circuit{bench.WState(16), bench.QEC9XZ(17), bench.QFT(10)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var depthS, depthM, gatesS, gatesM, swapsS, swapsM float64
		for _, c := range circs {
			s, err := transpile.Transpile(c, topo, transpile.Options{
				Router: transpile.SABRE, Layout: quickLayout(12), SkipTrivialLayout: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			m, err := transpile.Transpile(c, topo, transpile.Options{
				Router: transpile.MIRAGE, DepthSelection: true, Layout: quickLayout(12),
				SkipTrivialLayout: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			depthS += s.DepthPulses
			depthM += m.DepthPulses
			gatesS += s.TotalBasisGates
			gatesM += m.TotalBasisGates
			swapsS += float64(s.SwapsInserted)
			swapsM += float64(m.SwapsInserted)
		}
		b.ReportMetric(100*(depthS-depthM)/depthS, "depth_reduction_%")
		b.ReportMetric(100*(gatesS-gatesM)/gatesS, "gate_reduction_%")
		if swapsS > 0 {
			b.ReportMetric(100*(swapsS-swapsM)/swapsS, "swap_reduction_%")
		}
	}
}

// BenchmarkFig13Runtime reproduces the Fig. 13b runtime scaling and
// the caching ablation: QFT transpilation wall time with a cold vs
// warm coordinate cache.
func BenchmarkFig13Runtime(b *testing.B) {
	topo := topology.SquareLattice66()
	c := bench.QFT(16)
	for i := 0; i < b.N; i++ {
		circuit.ResetCoordinateCache()
		if _, err := transpile.Transpile(c, topo, transpile.Options{
			Router: transpile.MIRAGE, DepthSelection: true,
			Layout:            sabre.LayoutOptions{LayoutTrials: 2, RoutingTrials: 2, FwdBwdPasses: 1, Seed: 13},
			SkipTrivialLayout: true,
		}); err != nil {
			b.Fatal(err)
		}
		hits, misses := circuit.CoordinateCacheStats()
		if hits+misses > 0 {
			b.ReportMetric(100*float64(hits)/float64(hits+misses), "coord_cache_hit_%")
		}
	}
}

// BenchmarkTableIIIGenerators regenerates the Table III inventory and
// reports the aggregate 2Q gate count as a checksum.
func BenchmarkTableIIIGenerators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		total := 0
		for _, e := range bench.Suite() {
			total += e.Build().Count2Q()
		}
		b.ReportMetric(float64(total), "suite_2q_gates")
	}
}

// BenchmarkRoutingSerialVsParallel compares the trial engine at one
// worker vs one-per-CPU on the Fig. 12 circuit set (smoke scale). The
// routed results are seed-deterministic and identical in both modes;
// only the wall time differs. cmd/benchsuite writes the same
// comparison at full scale into BENCH_routing.json.
func BenchmarkRoutingSerialVsParallel(b *testing.B) {
	topo := topology.SquareLattice66()
	circs := []*circuit.Circuit{bench.WState(16), bench.QEC9XZ(17), bench.QFT(10)}
	for _, mode := range []struct {
		name string
		par  int
	}{
		{"serial", 1},
		{fmt.Sprintf("parallel_%d", runtime.GOMAXPROCS(0)), 0},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var swaps, mirrors float64
				for _, c := range circs {
					rep, err := transpile.Transpile(c, topo, transpile.Options{
						Router: transpile.MIRAGE, DepthSelection: true,
						Layout:            quickLayout(12),
						Parallelism:       mode.par,
						SkipTrivialLayout: true,
					})
					if err != nil {
						b.Fatal(err)
					}
					swaps += float64(rep.SwapsInserted)
					mirrors += float64(rep.MirrorsUsed)
				}
				b.ReportMetric(swaps, "swaps")
				b.ReportMetric(mirrors, "mirrors")
			}
		})
	}
}

// BenchmarkTranspileBatch measures the batch entrypoint: many circuits
// sharing one warmed cost cache, circuit-level fan-out.
func BenchmarkTranspileBatch(b *testing.B) {
	topo := topology.SquareLattice66()
	circs := []*circuit.Circuit{
		bench.WState(16), bench.QEC9XZ(17), bench.QFT(10), bench.GHZ(12),
	}
	for i := 0; i < b.N; i++ {
		cache := polytope.NewCostCache(0)
		reps, err := transpile.TranspileBatch(circs, topo, transpile.Options{
			Router: transpile.MIRAGE, DepthSelection: true,
			Layout:            quickLayout(12),
			Cache:             cache,
			SkipTrivialLayout: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(reps) != len(circs) {
			b.Fatal("missing reports")
		}
		hits, misses := cache.Stats()
		if hits+misses > 0 {
			b.ReportMetric(100*float64(hits)/float64(hits+misses), "cost_cache_hit_%")
		}
	}
}

// BenchmarkCoordinateOf measures the core Weyl-coordinate kernel that
// dominates MIRAGE's cost model (the target of the Fig. 13a caching).
// CoordinateOf now serves from the closed-form Mat4 kernel; the
// Fast/Reference pair below isolates the two paths on fixed inputs.
func BenchmarkCoordinateOf(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	var sink weyl.Coordinate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := linalg.RandSU(4, rng)
		c, err := weyl.CoordinateOf(u)
		if err != nil {
			b.Fatal(err)
		}
		sink = c
	}
	_ = sink
}

// BenchmarkCoordinateKernels compares the closed-form fixed-size path
// against the Jacobi reference on identical inputs (run with -benchmem
// to see the allocation contrast: 0 vs ~54 allocs/op).
func BenchmarkCoordinateKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	us := make([]*linalg.Matrix, 64)
	for i := range us {
		us[i] = linalg.RandSU(4, rng)
	}
	for _, mode := range []struct {
		name string
		f    func(*linalg.Matrix) (weyl.Coordinate, error)
	}{
		{"fast", weyl.CoordinateOfFast},
		{"reference", weyl.CoordinateOfReference},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var sink weyl.Coordinate
			for i := 0; i < b.N; i++ {
				c, err := mode.f(us[i%len(us)])
				if err != nil {
					b.Fatal(err)
				}
				sink = c
			}
			_ = sink
		})
	}
}
