// Package mirage is the public API of the MIRAGE reproduction: a
// quantum transpiler that co-designs SWAP routing and basis-gate
// decomposition using mirror gates (McKinney, Hatridge, Jones —
// "MIRAGE: Quantum Circuit Decomposition and Routing Collaborative
// Design using Mirror Gates", HPCA 2024).
//
// # Quick start
//
//	topo := mirage.SquareLattice66()
//	circ := mirage.QFT(18)
//	report, err := mirage.Transpile(circ, topo, mirage.Options{
//		Router:         mirage.MIRAGE,
//		DepthSelection: true,
//	})
//	fmt.Println(report.Summary())
//
// The facade re-exports the pieces a downstream user needs: circuit
// construction and QASM I/O, hardware topologies, benchmark
// generators, the SABRE baseline and MIRAGE routers, Weyl-chamber
// analysis (coordinates and mirror gates), coverage polytopes, and
// Haar-score experiments. The implementation lives in internal/
// packages; see DESIGN.md for the architecture map.
package mirage

import (
	"math/rand"
	"net"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/dispatch"
	"repro/internal/distrib"
	"repro/internal/gates"
	"repro/internal/haar"
	"repro/internal/linalg"
	mirpkg "repro/internal/mirage"
	"repro/internal/mirrorbench"
	"repro/internal/polytope"
	"repro/internal/sabre"
	"repro/internal/topology"
	"repro/internal/transpile"
	"repro/internal/weyl"
)

// --- Circuits ---

// Circuit is a gate list over logical qubit wires.
type Circuit = circuit.Circuit

// Op is one gate application.
type Op = circuit.Op

// Gate is a named unitary gate.
type Gate = gates.Gate

// NewCircuit returns an empty circuit with the given name and width.
func NewCircuit(name string, numQubits int) *Circuit { return circuit.New(name, numQubits) }

// ParseQASM reads an OpenQASM 2.0 subset (QASMBench/MQTBench style).
func ParseQASM(src string) (*Circuit, error) { return circuit.ParseQASM(src) }

// WriteQASM renders a circuit as OpenQASM 2.0.
func WriteQASM(c *Circuit) string { return circuit.WriteQASM(c) }

// UnrollTo2Q rewrites 3-qubit gates into 1Q/2Q decompositions.
func UnrollTo2Q(c *Circuit) *Circuit { return circuit.UnrollTo2Q(c) }

// ConsolidateBlocks merges runs of gates on a qubit pair into
// coordinate-annotated 2Q blocks.
func ConsolidateBlocks(c *Circuit) *Circuit { return circuit.ConsolidateBlocks(c) }

// --- Topologies ---

// Topology is a hardware coupling graph.
type Topology = topology.Topology

// Layout maps logical to physical qubits.
type Layout = topology.Layout

// NewLayout builds a layout from a logical-to-physical assignment
// (the initial-layout input of TrialRunner.Run and Route).
func NewLayout(l2p []int, numPhysical int) *Layout {
	return topology.NewLayout(l2p, numPhysical)
}

// TrivialLayout maps logical qubit i to physical qubit i.
func TrivialLayout(numLogical, numPhysical int) *Layout {
	return topology.TrivialLayout(numLogical, numPhysical)
}

// Line returns a 1-D chain of n qubits.
func Line(n int) *Topology { return topology.Line(n) }

// Ring returns a cycle of n qubits.
func Ring(n int) *Topology { return topology.Ring(n) }

// Grid returns a rows x cols lattice.
func Grid(rows, cols int) *Topology { return topology.Grid(rows, cols) }

// SquareLattice66 returns the paper's 6x6 square-lattice machine.
func SquareLattice66() *Topology { return topology.SquareLattice66() }

// HeavyHex57 returns the paper's 57-qubit heavy-hex machine.
func HeavyHex57() *Topology { return topology.HeavyHex57() }

// AllToAll returns a fully connected device.
func AllToAll(n int) *Topology { return topology.AllToAll(n) }

// NewTopology builds a custom coupling graph from an edge list.
func NewTopology(name string, numQubits int, edges [][2]int) *Topology {
	return topology.New(name, numQubits, edges)
}

// --- Transpilation ---

// Router selects the routing algorithm.
type Router = transpile.Router

// Router kinds.
const (
	SABRE  = transpile.SABRE
	MIRAGE = transpile.MIRAGE
)

// Options configures the transpiler pipeline.
type Options = transpile.Options

// Report is the transpilation outcome with the paper's metrics.
type Report = transpile.Report

// Aggression is the mirror-acceptance level of paper Algorithm 2.
type Aggression = mirpkg.Aggression

// Aggression levels (paper Algorithm 2).
const (
	AggressionNever  = mirpkg.AggressionNever
	AggressionLower  = mirpkg.AggressionLower
	AggressionEqual  = mirpkg.AggressionEqual
	AggressionAlways = mirpkg.AggressionAlways
)

// LayoutOptions holds SABRE trial counts and parameters.
type LayoutOptions = sabre.LayoutOptions

// RoutingOptions holds the per-trial SABRE parameters (lookahead
// window, decay, score sharding).
type RoutingOptions = sabre.Options

// RoutingResult is the outcome of one routing run.
type RoutingResult = sabre.Result

// TrialRunner reuses one routing-trial arena across many trials of a
// prepared (circuit, topology) pair: the dependency DAG is built once
// and shared immutably, all mutable trial state is rewound per Run, so
// steady-state trials allocate O(1). A runner is single-goroutine and
// the Result returned by Run aliases its arena (valid until the next
// Run). This is the dispatch unit a distributed trial queue hands to a
// worker.
type TrialRunner = sabre.TrialRunner

// NewTrialRunner validates and prepares a circuit for repeated routing
// trials on a topology.
func NewTrialRunner(c *Circuit, topo *Topology) (*TrialRunner, error) {
	return sabre.NewTrialRunner(c, topo)
}

// Transpile runs the full pipeline: cleaning, consolidation, trivial
// layout check, SABRE/MIRAGE routing, metrics. Routing trials run on a
// streaming scheduler over a bounded worker pool (Options.Parallelism;
// 0 = one worker per CPU) with seed-deterministic results at any
// worker count. Options.ConvergencePatience > 0 enables adaptive
// early-stop: trial scheduling ceases after that many consecutive
// non-improving trial indices — the stop rule is defined on trial
// indices, never wall-clock arrival order, so adaptive runs are also
// bit-identical at any Parallelism. Report.TrialsExecuted /
// TrialsBudgeted record the realised schedule, and
// Options.ScoreWorkers shards SWAP-candidate scoring inside each trial
// for very wide topologies.
func Transpile(c *Circuit, topo *Topology, opts Options) (*Report, error) {
	return transpile.Transpile(c, topo, opts)
}

// TranspileBatch transpiles many circuits onto one topology
// concurrently, sharing a single warmed decomposition-cost cache
// across all of them. Reports are index-aligned with the input and
// identical to what individual Transpile calls would produce.
func TranspileBatch(circuits []*Circuit, topo *Topology, opts Options) ([]*Report, error) {
	return transpile.TranspileBatch(circuits, topo, opts)
}

// PreparedCircuit is the amortised per-circuit front half of the
// pipeline: cleaning, 2Q block consolidation with Weyl coordinate
// annotation, and the shared routing analysis (prebuilt dependency
// DAGs). Immutable and safe to share across goroutines.
type PreparedCircuit = transpile.PreparedCircuit

// PrepareCircuit runs the per-circuit analysis once; pass the result
// to TranspilePrepared any number of times (different routers,
// aggression levels, selection metrics) without repaying it.
func PrepareCircuit(c *Circuit, topo *Topology) *PreparedCircuit {
	return transpile.PrepareCircuit(c, topo)
}

// TranspilePrepared is Transpile over a shared PreparedCircuit: only
// the configuration half (trivial-layout check, routing, metrics)
// runs per call.
func TranspilePrepared(pc *PreparedCircuit, opts Options) (*Report, error) {
	return transpile.TranspilePrepared(pc, opts)
}

// CostCache is the sharded LRU cache from quantised Weyl coordinates
// to decomposition costs (paper Section VI-C); pass one via
// Options.Cache to keep it warm across Transpile/TranspileBatch calls.
// Save/Load (and the SaveFile/LoadFile helpers) persist the table so
// repeated benchmark runs start warm, and Merge folds another cache in
// — entries deduplicated, hit/miss counters summed — which is how
// distributed batch shards reduce their per-worker caches.
type CostCache = polytope.CostCache

// NewCostCache returns a cost cache holding up to capacity entries
// (<= 0 selects the default size).
func NewCostCache(capacity int) *CostCache { return polytope.NewCostCache(capacity) }

// --- Distributed trial dispatch ---

// DispatchHub is a coordinator's pool of worker connections: workers
// dial in once (ServeWorker / `miraged worker`) and serve any number
// of sequential jobs. Lost workers have their leased work re-granted;
// work items are deterministic in their index, so outcomes are
// bit-identical to single-process runs regardless of worker count or
// failures.
type DispatchHub = dispatch.Hub

// NewDispatchHub returns an empty hub; call its Listen method to
// accept workers over TCP.
func NewDispatchHub() *DispatchHub { return dispatch.NewHub() }

// Cluster is the coordinator-side API over a hub: distributed
// counterparts of FindBestRouting and TranspileBatch, plus Options to
// wire remote trial dispatch into a transpile pipeline.
type Cluster = distrib.Cluster

// NewCluster wraps a hub with default dispatch tuning.
func NewCluster(h *DispatchHub) *Cluster { return distrib.NewCluster(h) }

// ServeWorker runs the worker side of the dispatch protocol on an
// established connection until the coordinator closes it, handling
// both the routing-trial and batch-transpile job kinds.
func ServeWorker(conn net.Conn) error {
	return dispatch.ServeConn(conn, distrib.Handlers(), nil)
}

// ServeWorkerAddr dials a coordinator and serves jobs until the
// connection closes — the library form of `miraged worker -connect`.
func ServeWorkerAddr(addr string) error {
	return dispatch.ServeAddr(addr, distrib.Handlers(), nil)
}

// WorkerOptions tunes the worker side of the dispatch protocol:
// heartbeat cadence, per-item timeouts, a graceful-drain channel that
// hands the current lease back to the coordinator, and seeded fault
// injection (ChaosConfig) for testing coordinator recovery.
type WorkerOptions = dispatch.ServeOptions

// ReconnectOptions bounds ServeResilientWorker's capped
// exponential-backoff redial loop.
type ReconnectOptions = dispatch.ReconnectOptions

// ServeResilientWorker is ServeWorkerAddr with fault tolerance: the
// worker reconnects with capped exponential backoff and jitter when
// the coordinator goes away, rejoins in-progress jobs, and drains
// gracefully when opts.Drain is closed — the library form of
// `miraged worker -connect ... -retry ... -drain`.
func ServeResilientWorker(addr string, opts *WorkerOptions, rc ReconnectOptions) error {
	return dispatch.ServeLoop(addr, distrib.Handlers(), opts, rc)
}

// FleetStats is a snapshot of a hub's failure-event counters (lease
// re-grants, deadline revocations, disconnects, reconnects, quarantined
// decode faults), available via DispatchHub.Stats. Recovery never
// changes results — the counters exist so callers can assert that
// recovery happened.
type FleetStats = dispatch.FleetStats

// TranspileBatchOver shards a batch across the cluster at circuit
// granularity: every report is bit-identical to the local
// TranspileBatch's, and worker cost caches are merged into opts.Cache
// when set.
func TranspileBatchOver(cl *Cluster, circuits []*Circuit, topo *Topology, opts Options) ([]*Report, error) {
	return cl.TranspileBatch(circuits, topo, opts)
}

// --- Weyl chamber analysis ---

// Coordinate is a point of the canonical Weyl chamber.
type Coordinate = weyl.Coordinate

// CoordinateOf returns the Weyl coordinate of a 4x4 unitary.
func CoordinateOf(u *linalg.Matrix) (Coordinate, error) { return weyl.CoordinateOf(u) }

// Mirror returns the coordinate of SWAP * U for a gate U at c
// (paper Eq. 1).
func Mirror(c Coordinate) Coordinate { return weyl.Mirror(c) }

// HaarSampleCoordinate draws the coordinate of a Haar-random 2Q gate.
func HaarSampleCoordinate(rng *rand.Rand) Coordinate { return weyl.HaarSample(rng) }

// --- Coverage polytopes ---

// CoverageSet is the cost-ordered family of reachable-set polytopes of
// a basis gate.
type CoverageSet = polytope.CoverageSet

// SqrtISwapCoverage returns the sqrt-iSWAP coverage set (the paper's
// primary basis).
func SqrtISwapCoverage() *CoverageSet { return polytope.NewISwapRootCoverage(2) }

// ISwapRootCoverage returns the coverage set of iSWAP^(1/n).
func ISwapRootCoverage(n int) *CoverageSet { return polytope.NewISwapRootCoverage(n) }

// CNOTCoverage returns the exact CNOT-basis coverage set.
func CNOTCoverage() *CoverageSet { return polytope.NewCNOTCoverage() }

// --- Haar scores (paper Section III-C) ---

// HaarStrategy selects mirror/approximation variants of Algorithm 1.
type HaarStrategy = haar.Strategy

// HaarResult is a Monte-Carlo Haar-score outcome.
type HaarResult = haar.Result

// HaarScore runs Algorithm 1 on a coverage set.
func HaarScore(cov *CoverageSet, strat HaarStrategy, samples int, seed int64) HaarResult {
	return haar.Score(cov, strat, haar.Options{Samples: samples, Seed: seed})
}

// --- Benchmark circuits (paper Table III) ---

// BenchmarkEntry names a Table III workload.
type BenchmarkEntry = bench.Entry

// BenchmarkSuite returns the paper's benchmark selection.
func BenchmarkSuite() []BenchmarkEntry { return bench.Suite() }

// MirrorBenchmarkSuite returns the Mirror workload family: the
// self-verifying mirror-circuit rows of the full suite (each Entry's
// Mirror field carries the generator spec).
func MirrorBenchmarkSuite() []BenchmarkEntry { return bench.MirrorSuite() }

// QFT returns the n-qubit quantum Fourier transform.
func QFT(n int) *Circuit { return bench.QFT(n) }

// GHZ returns the n-qubit GHZ preparation circuit.
func GHZ(n int) *Circuit { return bench.GHZ(n) }

// TwoLocal returns the fully entangled ansatz of paper Fig. 8a.
func TwoLocal(n int) *Circuit { return bench.TwoLocal(n) }

// --- Mirror circuits (self-verifying workloads) ---

// MirrorSpec deterministically identifies a mirror circuit: kind
// (randomized Clifford or mirror quantum volume), width, depth and
// seed. Equal specs regenerate bit-identical circuits and outcomes.
type MirrorSpec = mirrorbench.Spec

// MirrorCircuit is a generated mirror circuit together with its
// analytically-known survival bitstring.
type MirrorCircuit = mirrorbench.Mirror

// MirrorKind selects the mirror-circuit family.
type MirrorKind = mirrorbench.Kind

// Mirror-circuit families.
const (
	MirrorRandomizedClifford = mirrorbench.RandomizedClifford
	MirrorQuantumVolume      = mirrorbench.QuantumVolume
)

// GenerateMirror builds the mirror circuit of a spec: a forward half,
// an optional central Pauli layer, and the exact inverse half, so the
// ideal output state is a known computational basis state — an
// end-to-end correctness oracle for any transpiler.
func GenerateMirror(s MirrorSpec) *MirrorCircuit { return mirrorbench.Generate(s) }

// VerifyMirror checks a transpiled mirror circuit against its expected
// survival bitstring through the final layout, returning the survival
// fidelity |<expected|U|0...0>|^2. It fails when the infidelity
// exceeds tol, and reports ErrMirrorTooWide when the routed footprint
// exceeds the dense-unitary limit.
func VerifyMirror(routed *Circuit, final *Layout, expected []int, tol float64) (float64, error) {
	return mirrorbench.Verify(routed, final, expected, tol)
}

// ErrMirrorTooWide reports a routed circuit too wide for dense-unitary
// mirror verification (see VerifyMirror).
var ErrMirrorTooWide = mirrorbench.ErrTooWide
